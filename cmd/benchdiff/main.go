// Command benchdiff is the CI bench-regression gate: it compares a
// fresh benchmark JSON against the checked-in baseline under
// ci/baselines/ and exits non-zero when a metric regresses past the
// tolerance.
//
// Two kinds of comparison:
//
//	-kind wal            compares walbench commits/sec per client count
//	                     against the baseline (fail on a >tolerance
//	                     drop).
//	-kind wal-shards     gates the walbench shard-plane sweep: every
//	                     baseline shard count must be present, the
//	                     1-shard real throughput must hold within the
//	                     tolerance, the widest count's modeled speedup
//	                     (busiest-plane time vs 1 shard) must reach
//	                     -min-shard-scale, and at every multi-shard
//	                     count the auto-split balancer must have acted —
//	                     boundary splits and migrations recorded, and
//	                     the hot shard's load share lower at the end of
//	                     the run than at the start. Real throughput
//	                     shape is NOT gated beyond the 1-shard floor:
//	                     CI smoke cores are too few for wall-clock
//	                     scaling, which is exactly what the modeled
//	                     metric exists for.
//	-kind recovery       checks the machine-independent invariants of
//	                     recoverybench — parallel redo must beat 1
//	                     worker by -min-speedup at the widest worker
//	                     count AND must still be improving there (no
//	                     plateau: the widest count's speedup strictly
//	                     exceeds the previous one's), parallel undo
//	                     must beat 1 worker by -min-undo-speedup,
//	                     checkpointed recovery must replay fewer
//	                     records than cold — and compares the
//	                     deterministic record counts against the
//	                     baseline within the tolerance.
//	-kind recovery-shards gates the cross-shard recovery sweep: every
//	                     shard count must have completed (positive wall
//	                     time), the double-recovery determinism check at
//	                     the widest count must hold (identical redo /
//	                     applied / CLR counts across runs), and each
//	                     count's redo window must match the baseline
//	                     within the tolerance. The speedup curve is
//	                     reported but not gated — like the file kind, CI
//	                     smoke hardware is too variable to assert a
//	                     shape; refresh the baseline to track it.
//	-kind workload       gates the typed-executor YCSB run: every op
//	                     kind the mix asks for must have committed,
//	                     scans must return rows, the crash-recovery
//	                     typed digest must match, predicate pushdown
//	                     must decode strictly fewer rows than
//	                     post-filtering, and throughput (ops/sec) must
//	                     hold within the tolerance of the baseline.
//	-kind replica        gates the log-shipping standby (replicabench):
//	                     the promoted standby's digest must match the
//	                     primary's, the maximum observed replay lag must
//	                     stay under the configured bound, the identical
//	                     seeded run must apply exactly the same record
//	                     count twice (and exactly the baseline's count —
//	                     the stream is deterministic, so this is an
//	                     equality, not a tolerance), and promotion must
//	                     have measurably happened (positive wall time).
//	                     Throughput is reported but not gated.
//	-kind recovery-slo   gates the recovery-SLO report (recoverybench
//	                     -budget): on both the sim and file devices the
//	                     budget-mode Checkpointer must have fired on the
//	                     replay estimate (budget triggers ≥ 1), measured
//	                     replay of the resulting crash must land within
//	                     the budget plus tolerance and -slo-slack-ms
//	                     (fixed reopen costs a checkpoint cannot
//	                     shrink), and the parallel recovery must be
//	                     byte-identical to a serial re-recovery of the
//	                     same crash (equal positive CLR counts, equal
//	                     log end). The decode sweep must show the
//	                     segmented front-end emitting identical record
//	                     counts at every width, up to ≥ 8 workers over
//	                     more than one segment. Wall-clock speedup
//	                     shapes are NOT gated — the invariants are.
//	-kind pool           gates the poolbench sweep (latch shards ×
//	                     eviction policy × pool/keyspace ratio): every
//	                     baseline cell must be present; every run must
//	                     have real cache pressure (evictions) and at
//	                     least one full scan pass (the workload the
//	                     policies disagree on); in every matched
//	                     (shards, capacity) pair the 2q client hit
//	                     ratio must strictly beat clock's — that is a
//	                     property of the replacement order, not the
//	                     host; each cell's client hit ratio must hold
//	                     within the tolerance of the baseline; and,
//	                     when the current run had ≥ 4 GOMAXPROCS, the
//	                     8-latch-shard pool must out-run the single
//	                     latch at the same policy and capacity (skipped
//	                     on smaller hosts for the same reason wal-shards
//	                     does not gate wall-clock scaling on CI smoke
//	                     cores).
//	-kind recovery-file  gates recoverybench -device=file: every sweep
//	                     entry must have completed (its wall time is a
//	                     real measurement, so it must be positive),
//	                     checkpointing must bound the redo scan, and
//	                     the deterministic record counts must match the
//	                     baseline within the tolerance. Speedup shapes
//	                     are deliberately NOT gated here: the CI smoke
//	                     runs on tmpfs, where page reads cost ~nothing
//	                     and parallelism has nothing to overlap.
//
// Refresh baselines with `make bench-baseline` after an intentional
// performance change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type walReport struct {
	Results []struct {
		Clients        int     `json:"clients"`
		CommitsPerSec  float64 `json:"commits_per_sec"`
		CommitsPerFlus float64 `json:"commits_per_flush"`
	} `json:"results"`
}

type walShardsReport struct {
	Results []struct {
		Shards         int     `json:"shards"`
		CommitsPerSec  float64 `json:"commits_per_sec"`
		ModeledSpeedup float64 `json:"modeled_speedup_vs_1"`
		BoundarySplits int64   `json:"boundary_splits"`
		Migrations     int64   `json:"migrations"`
		FirstHotShare  float64 `json:"first_hot_share"`
		LastHotShare   float64 `json:"last_hot_share"`
	} `json:"results"`
}

type wkldReport struct {
	Preset string `json:"preset"`
	Result struct {
		Commits           int64   `json:"commits"`
		Reads             int64   `json:"reads"`
		Updates           int64   `json:"updates"`
		Inserts           int64   `json:"inserts"`
		Scans             int64   `json:"scans"`
		ScanRows          int64   `json:"scan_rows"`
		OpsPerSec         float64 `json:"ops_per_sec"`
		ProbeRows         int64   `json:"probe_rows"`
		PushdownDecoded   int64   `json:"pushdown_decoded_rows"`
		PostFilterDecoded int64   `json:"postfilter_decoded_rows"`
		RowsRecovered     int64   `json:"rows_recovered"`
		DigestMatch       bool    `json:"digest_match"`
	} `json:"result"`
}

type replicaReport struct {
	Result struct {
		ShippedBytes       int64   `json:"shipped_bytes"`
		AppliedRecords     int64   `json:"applied_records"`
		AppliedRecordsRun2 int64   `json:"applied_records_run2"`
		MaxLagBytes        int64   `json:"max_lag_bytes"`
		LagBoundBytes      int64   `json:"lag_bound_bytes"`
		LagSamples         int64   `json:"lag_samples"`
		PromoteMS          float64 `json:"promote_ms"`
		DigestMatch        bool    `json:"digest_match"`
		TxnsPerSec         float64 `json:"txns_per_sec"`
	} `json:"result"`
}

type recoveryReport struct {
	Workers []struct {
		Workers     int     `json:"workers"`
		WallRedoMS  float64 `json:"wall_redo_ms"`
		RedoRecords int64   `json:"redo_records"`
		Speedup     float64 `json:"speedup_vs_1"`
	} `json:"workers"`
	UndoWorkers []struct {
		Workers     int     `json:"workers"`
		WallUndoMS  float64 `json:"wall_undo_ms"`
		CLRsWritten int64   `json:"clrs_written"`
		Speedup     float64 `json:"speedup_vs_1"`
	} `json:"undo_workers"`
	Checkpoint struct {
		ColdRedoRecords int64 `json:"cold_redo_records"`
		CkptRedoRecords int64 `json:"ckpt_redo_records"`
	} `json:"checkpoint"`
	Shards []struct {
		Shards      int     `json:"shards"`
		WallTotalMS float64 `json:"wall_total_ms"`
		RedoRecords int64   `json:"redo_records"`
		Applied     int64   `json:"applied"`
		Speedup     float64 `json:"speedup_vs_1"`
	} `json:"shards"`
	Determinism *struct {
		Shards           int  `json:"shards"`
		Runs             int  `json:"runs"`
		RedoRecordsEqual bool `json:"redo_records_equal"`
		AppliedEqual     bool `json:"applied_equal"`
		CLRsEqual        bool `json:"clrs_equal"`
	} `json:"determinism"`
}

type sloReport struct {
	SLO []struct {
		Device           string  `json:"device"`
		BudgetMS         float64 `json:"budget_ms"`
		TrafficBytes     int64   `json:"traffic_bytes"`
		CheckpointsTaken int64   `json:"checkpoints_taken"`
		BudgetTriggers   int64   `json:"budget_triggers"`
		ReplayMS         float64 `json:"replay_ms"`
		LosersUndone     int     `json:"losers_undone"`
		CLRsParallel     int64   `json:"clrs_parallel"`
		CLRsSerial       int64   `json:"clrs_serial"`
		LogEndEqual      bool    `json:"log_end_equal"`
	} `json:"slo"`
	Decode []struct {
		Workers        int   `json:"workers"`
		DecodeRecords  int64 `json:"decode_records"`
		DecodeSegments int   `json:"decode_segments"`
	} `json:"decode"`
}

type poolReport struct {
	GoMaxProcs int `json:"go_max_procs"`
	Runs       []struct {
		LatchShards    int     `json:"latch_shards"`
		Policy         string  `json:"policy"`
		Capacity       int     `json:"capacity"`
		OpsPerSec      float64 `json:"ops_per_sec"`
		ClientHitRatio float64 `json:"client_hit_ratio"`
		Evictions      int64   `json:"evictions"`
		ScanPasses     float64 `json:"scan_passes"`
	} `json:"runs"`
}

func main() {
	var (
		kind           = flag.String("kind", "", "report kind: wal or recovery")
		baseline       = flag.String("baseline", "", "checked-in baseline JSON path")
		current        = flag.String("current", "", "freshly produced JSON path")
		tolerance      = flag.Float64("tolerance", 0.30, "allowed fractional regression vs baseline")
		minSpeedup     = flag.Float64("min-speedup", 1.2, "required parallel-redo speedup at the max worker count (recovery kind)")
		minUndoSpeedup = flag.Float64("min-undo-speedup", 1.2, "required parallel-undo speedup at the max undo worker count (recovery kind)")
		minShardScale  = flag.Float64("min-shard-scale", 3.0, "required modeled speedup at the max shard count (wal-shards kind)")
		sloSlackMS     = flag.Float64("slo-slack-ms", 50, "fixed replay-time allowance on top of the budget (recovery-slo kind): reopen costs a checkpoint cannot shrink")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}

	var failures []string
	switch *kind {
	case "wal":
		failures = diffWAL(*baseline, *current, *tolerance)
	case "wal-shards":
		failures = diffWALShards(*baseline, *current, *tolerance, *minShardScale)
	case "recovery":
		failures = diffRecovery(*baseline, *current, *tolerance, *minSpeedup, *minUndoSpeedup)
	case "recovery-file":
		failures = diffRecoveryFile(*baseline, *current, *tolerance)
	case "recovery-shards":
		failures = diffRecoveryShards(*baseline, *current, *tolerance)
	case "recovery-slo":
		failures = diffRecoverySLO(*baseline, *current, *tolerance, *sloSlackMS)
	case "workload":
		failures = diffWorkload(*baseline, *current, *tolerance)
	case "pool":
		failures = diffPool(*baseline, *current, *tolerance)
	case "replica":
		failures = diffReplica(*baseline, *current)
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown -kind %q (want wal, wal-shards, recovery, recovery-file, recovery-shards, recovery-slo, workload, pool or replica)\n", *kind)
		os.Exit(2)
	}

	if len(failures) > 0 {
		fmt.Printf("benchdiff FAIL (%s): %d regression(s)\n", *kind, len(failures))
		for _, f := range failures {
			fmt.Printf("  - %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff PASS (%s): %s within tolerance %.0f%% of %s\n",
		*kind, *current, *tolerance*100, *baseline)
}

func load(path string, v any) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
}

func diffWAL(basePath, curPath string, tol float64) []string {
	var base, cur walReport
	load(basePath, &base)
	load(curPath, &cur)
	curBy := make(map[int]float64, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Clients] = r.CommitsPerSec
	}
	var fails []string
	for _, b := range base.Results {
		got, ok := curBy[b.Clients]
		if !ok {
			fails = append(fails, fmt.Sprintf("clients=%d: missing from current run", b.Clients))
			continue
		}
		floor := b.CommitsPerSec * (1 - tol)
		if got < floor {
			fails = append(fails, fmt.Sprintf(
				"clients=%d: %.0f commits/sec < %.0f (baseline %.0f - %.0f%%)",
				b.Clients, got, floor, b.CommitsPerSec, tol*100))
		}
	}
	// Machine-independent shape invariants: group commit must scale —
	// the widest client count must beat the narrowest on throughput and
	// actually batch commits. These hold on any hardware, so a noisy
	// runner can only trip the absolute comparison above, not these.
	if len(cur.Results) >= 2 {
		lo, hi := cur.Results[0], cur.Results[0]
		for _, r := range cur.Results[1:] {
			if r.Clients < lo.Clients {
				lo = r
			}
			if r.Clients > hi.Clients {
				hi = r
			}
		}
		if hi.Clients > lo.Clients {
			if hi.CommitsPerSec <= lo.CommitsPerSec {
				fails = append(fails, fmt.Sprintf(
					"group commit stopped scaling: %d clients %.0f commits/sec ≤ %d clients %.0f",
					hi.Clients, hi.CommitsPerSec, lo.Clients, lo.CommitsPerSec))
			}
			if hi.CommitsPerFlus <= 1 {
				fails = append(fails, fmt.Sprintf(
					"no commit batching at %d clients: %.2f commits/flush",
					hi.Clients, hi.CommitsPerFlus))
			}
		}
	}
	return fails
}

// diffWALShards gates the shard-plane sweep: per-count completeness,
// the 1-shard throughput floor, modeled scaling at the widest count,
// and observable auto-split rebalancing at every multi-shard count
// (see the package comment).
func diffWALShards(basePath, curPath string, tol, minScale float64) []string {
	var base, cur walShardsReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	if len(cur.Results) == 0 {
		return []string{"current run has no shard sweep"}
	}
	curBy := map[int]int{}
	for i, r := range cur.Results {
		curBy[r.Shards] = i
	}
	for _, b := range base.Results {
		if _, ok := curBy[b.Shards]; !ok {
			fails = append(fails, fmt.Sprintf("shards=%d: missing from current run", b.Shards))
		}
	}
	// The 1-shard entry is the only real-throughput gate: it has no
	// planes to model around, so a drop there is a plain write-path
	// regression.
	for _, b := range base.Results {
		if b.Shards != 1 {
			continue
		}
		i, ok := curBy[1]
		if !ok {
			break
		}
		floor := b.CommitsPerSec * (1 - tol)
		if got := cur.Results[i].CommitsPerSec; got < floor {
			fails = append(fails, fmt.Sprintf(
				"shards=1: %.0f commits/sec < %.0f (baseline %.0f - %.0f%%)",
				got, floor, b.CommitsPerSec, tol*100))
		}
	}

	widest := cur.Results[0]
	for _, r := range cur.Results[1:] {
		if r.Shards > widest.Shards {
			widest = r
		}
	}
	if widest.Shards <= 1 {
		fails = append(fails, "shard sweep never ran more than 1 shard; the scaling gate has nothing to check")
		return fails
	}
	if widest.ModeledSpeedup < minScale {
		fails = append(fails, fmt.Sprintf(
			"shard planes: %d shards only %.2fx modeled over 1 shard, want ≥ %.2fx",
			widest.Shards, widest.ModeledSpeedup, minScale))
	}
	// The balancer must demonstrably rebalance at every multi-shard
	// count: boundaries cut, at least one range migrated, and the hot
	// shard's share of the traffic lower at the end than at the start.
	for _, r := range cur.Results {
		if r.Shards <= 1 {
			continue
		}
		if r.BoundarySplits == 0 {
			fails = append(fails, fmt.Sprintf("shards=%d: auto-split cut no boundaries", r.Shards))
		}
		if r.Migrations == 0 {
			fails = append(fails, fmt.Sprintf("shards=%d: auto-split migrated no ranges", r.Shards))
		}
		if r.LastHotShare >= r.FirstHotShare {
			fails = append(fails, fmt.Sprintf(
				"shards=%d: hot share did not drop (first %.2f, last %.2f)",
				r.Shards, r.FirstHotShare, r.LastHotShare))
		}
	}
	return fails
}

// diffWorkload gates the typed-executor YCSB run: mix coverage, the
// recovery digest, the pushdown decode win, and baseline throughput
// (see the package comment).
func diffWorkload(basePath, curPath string, tol float64) []string {
	var base, cur wkldReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string
	r := cur.Result

	if r.Commits <= 0 {
		return []string{"current workload run committed nothing"}
	}
	// The walbench driver already asserts its own mix coverage before
	// writing the report; re-check the load-bearing ones so a stale or
	// hand-edited report cannot pass the gate.
	if base.Result.Reads > 0 && r.Reads == 0 {
		fails = append(fails, "baseline mix has reads but current run committed none")
	}
	if base.Result.Updates > 0 && r.Updates == 0 {
		fails = append(fails, "baseline mix has updates but current run committed none")
	}
	if base.Result.Inserts > 0 && r.Inserts == 0 {
		fails = append(fails, "baseline mix has inserts but current run committed none")
	}
	if base.Result.Scans > 0 && (r.Scans == 0 || r.ScanRows == 0) {
		fails = append(fails, fmt.Sprintf(
			"baseline mix has scans but current run committed %d scans over %d rows", r.Scans, r.ScanRows))
	}
	if !r.DigestMatch {
		fails = append(fails, "typed digest diverged across crash recovery")
	}
	if r.RowsRecovered <= 0 {
		fails = append(fails, "recovery produced no executor-visible rows")
	}
	if r.ProbeRows <= 0 {
		fails = append(fails, "pushdown probe matched no rows; the decode comparison is vacuous")
	}
	if r.PushdownDecoded >= r.PostFilterDecoded {
		fails = append(fails, fmt.Sprintf(
			"pushdown decoded %d rows ≥ post-filter %d: predicate pushdown is not saving decodes",
			r.PushdownDecoded, r.PostFilterDecoded))
	}
	if base.Result.OpsPerSec > 0 {
		floor := base.Result.OpsPerSec * (1 - tol)
		if r.OpsPerSec < floor {
			fails = append(fails, fmt.Sprintf(
				"%.0f ops/sec < %.0f (baseline %.0f - %.0f%%)",
				r.OpsPerSec, floor, base.Result.OpsPerSec, tol*100))
		}
	}
	return fails
}

func diffPool(basePath, curPath string, tol float64) []string {
	var base, cur poolReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	type cell struct {
		shards   int
		policy   string
		capacity int
	}
	curByCell := map[cell]int{}
	for i, r := range cur.Runs {
		curByCell[cell{r.LatchShards, r.Policy, r.Capacity}] = i
	}

	// Every baseline cell must be present, with its client hit ratio
	// within the tolerance.
	for _, b := range base.Runs {
		i, ok := curByCell[cell{b.LatchShards, b.Policy, b.Capacity}]
		if !ok {
			fails = append(fails, fmt.Sprintf(
				"baseline cell shards=%d policy=%s capacity=%d missing from current run",
				b.LatchShards, b.Policy, b.Capacity))
			continue
		}
		r := cur.Runs[i]
		if floor := b.ClientHitRatio * (1 - tol); r.ClientHitRatio < floor {
			fails = append(fails, fmt.Sprintf(
				"shards=%d policy=%s capacity=%d: client hit ratio %.3f < %.3f (baseline %.3f - %.0f%%)",
				b.LatchShards, b.Policy, b.Capacity, r.ClientHitRatio, floor, b.ClientHitRatio, tol*100))
		}
	}

	// Per-run floors: the comparison below is vacuous without real
	// cache pressure and real scan traffic.
	for _, r := range cur.Runs {
		if r.Evictions == 0 {
			fails = append(fails, fmt.Sprintf(
				"shards=%d policy=%s capacity=%d: zero evictions — no cache pressure",
				r.LatchShards, r.Policy, r.Capacity))
		}
		if r.ScanPasses < 1 {
			fails = append(fails, fmt.Sprintf(
				"shards=%d policy=%s capacity=%d: %.2f scan passes < 1 — no scan pressure",
				r.LatchShards, r.Policy, r.Capacity, r.ScanPasses))
		}
	}

	// Scan resistance: at every (shards, capacity) where both policies
	// ran, 2q must strictly beat clock on the client hit ratio. This is
	// a property of the replacement order, so no tolerance.
	for c, i := range curByCell {
		if c.policy != "clock" {
			continue
		}
		j, ok := curByCell[cell{c.shards, "2q", c.capacity}]
		if !ok {
			continue
		}
		clockHit, twoQHit := cur.Runs[i].ClientHitRatio, cur.Runs[j].ClientHitRatio
		if twoQHit <= clockHit {
			fails = append(fails, fmt.Sprintf(
				"shards=%d capacity=%d: 2q client hit ratio %.3f ≤ clock %.3f under concurrent scan",
				c.shards, c.capacity, twoQHit, clockHit))
		}
	}

	// Latch scaling: with real parallelism, 8 latch shards must move
	// more ops/sec than a single latch at the same policy + capacity.
	// Below 4 procs the sweep cannot exhibit parallelism, so skip (the
	// wal-shards gate documents the same CI-smoke reasoning).
	if cur.GoMaxProcs >= 4 {
		for c, i := range curByCell {
			if c.shards != 1 {
				continue
			}
			j, ok := curByCell[cell{8, c.policy, c.capacity}]
			if !ok {
				continue
			}
			one, eight := cur.Runs[i].OpsPerSec, cur.Runs[j].OpsPerSec
			if eight <= one {
				fails = append(fails, fmt.Sprintf(
					"policy=%s capacity=%d: 8 latch shards %.0f ops/sec ≤ 1 shard %.0f at %d procs",
					c.policy, c.capacity, eight, one, cur.GoMaxProcs))
			}
		}
	}
	return fails
}

func diffRecovery(basePath, curPath string, tol, minSpeedup, minUndoSpeedup float64) []string {
	var base, cur recoveryReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	// Machine-independent invariants of the current run.
	if len(cur.Workers) == 0 {
		return []string{"current run has no worker sweep"}
	}
	widest := cur.Workers[0]
	runnerUp := widest
	for _, w := range cur.Workers[1:] {
		if w.Workers > widest.Workers {
			runnerUp = widest
			widest = w
		} else if w.Workers > runnerUp.Workers || runnerUp.Workers == widest.Workers {
			runnerUp = w
		}
	}
	if widest.Workers <= 1 {
		fails = append(fails, "worker sweep never ran more than 1 worker; the speedup gate has nothing to check")
	} else {
		if widest.Speedup < minSpeedup {
			fails = append(fails, fmt.Sprintf(
				"parallel redo: %d workers only %.2fx over 1 worker, want ≥ %.2fx",
				widest.Workers, widest.Speedup, minSpeedup))
		}
		// No-plateau check: the widest worker count must still improve
		// on the previous one (the pipelined dispatcher and shard-scoped
		// barriers exist to keep this curve climbing).
		if runnerUp.Workers > 1 && runnerUp.Workers < widest.Workers && widest.Speedup <= runnerUp.Speedup {
			fails = append(fails, fmt.Sprintf(
				"parallel redo plateaued: %d workers %.2fx ≤ %d workers %.2fx",
				widest.Workers, widest.Speedup, runnerUp.Workers, runnerUp.Speedup))
		}
	}

	// Parallel undo invariants, when the run has an undo sweep.
	if len(cur.UndoWorkers) > 0 {
		uw := cur.UndoWorkers[0]
		for _, w := range cur.UndoWorkers[1:] {
			if w.Workers > uw.Workers {
				uw = w
			}
		}
		if uw.Workers <= 1 {
			fails = append(fails, "undo worker sweep never ran more than 1 worker; the undo speedup gate has nothing to check")
		} else if uw.Speedup < minUndoSpeedup {
			fails = append(fails, fmt.Sprintf(
				"parallel undo: %d workers only %.2fx over 1 worker, want ≥ %.2fx",
				uw.Workers, uw.Speedup, minUndoSpeedup))
		}
	} else if len(base.UndoWorkers) > 0 {
		fails = append(fails, "baseline has an undo worker sweep but the current run has none")
	}
	if cur.Checkpoint.CkptRedoRecords >= cur.Checkpoint.ColdRedoRecords {
		fails = append(fails, fmt.Sprintf(
			"checkpointing did not bound the redo scan: %d records with ckpt ≥ %d cold",
			cur.Checkpoint.CkptRedoRecords, cur.Checkpoint.ColdRedoRecords))
	}

	// Record counts are deterministic for fixed flags; drifting past the
	// tolerance means the redo window or screening changed.
	checkCount := func(name string, baseN, curN int64) {
		if baseN == 0 {
			return
		}
		drift := float64(curN-baseN) / float64(baseN)
		if drift > tol || drift < -tol {
			fails = append(fails, fmt.Sprintf(
				"%s: %d records vs baseline %d (drift %.0f%% > %.0f%%)",
				name, curN, baseN, drift*100, tol*100))
		}
	}
	checkCount("cold redo window", base.Checkpoint.ColdRedoRecords, cur.Checkpoint.ColdRedoRecords)
	checkCount("checkpointed redo window", base.Checkpoint.CkptRedoRecords, cur.Checkpoint.CkptRedoRecords)
	if len(base.UndoWorkers) > 0 && len(cur.UndoWorkers) > 0 {
		// The CLR count is the same at every worker width (undo plans
		// serially), so comparing the first entries suffices.
		checkCount("undo CLR count", base.UndoWorkers[0].CLRsWritten, cur.UndoWorkers[0].CLRsWritten)
	}
	return fails
}

// diffRecoveryShards gates the cross-shard recovery sweep: completion
// and cross-shard determinism, plus baseline drift on the deterministic
// record counts (see the package comment).
func diffRecoveryShards(basePath, curPath string, tol float64) []string {
	var base, cur recoveryReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	if len(cur.Shards) == 0 {
		return []string{"current run has no shard sweep"}
	}
	haveOne, widest := false, 1
	for _, s := range cur.Shards {
		if s.Shards == 1 {
			haveOne = true
		}
		if s.Shards > widest {
			widest = s.Shards
		}
		if s.WallTotalMS <= 0 {
			fails = append(fails, fmt.Sprintf(
				"recovery at %d shards reported %.3fms wall time; the run did not really happen", s.Shards, s.WallTotalMS))
		}
		if s.Applied <= 0 {
			fails = append(fails, fmt.Sprintf(
				"recovery at %d shards applied nothing; the crash had a redo window", s.Shards))
		}
	}
	if !haveOne {
		fails = append(fails, "shard sweep has no 1-shard baseline; speedup_vs_1 is meaningless")
	}
	if widest <= 1 {
		fails = append(fails, "shard sweep never ran more than 1 shard; cross-shard recovery went unexercised")
	}

	// No-plateau check at wide counts: once the sweep reaches 8 shards,
	// the widest count must still improve on the runner-up — the
	// segmented parallel decode front-end exists so the demultiplexer
	// stops being the ceiling there. Narrower sweeps (old baselines)
	// skip this; absolute speedup values are still not gated.
	if widest >= 8 {
		wi, ri := -1, -1
		for i, s := range cur.Shards {
			switch {
			case wi < 0 || s.Shards > cur.Shards[wi].Shards:
				ri, wi = wi, i
			case ri < 0 || s.Shards > cur.Shards[ri].Shards:
				ri = i
			}
		}
		if ri >= 0 && cur.Shards[ri].Shards > 1 &&
			cur.Shards[wi].Speedup <= cur.Shards[ri].Speedup {
			fails = append(fails, fmt.Sprintf(
				"cross-shard recovery plateaued: %d shards %.2fx ≤ %d shards %.2fx",
				cur.Shards[wi].Shards, cur.Shards[wi].Speedup,
				cur.Shards[ri].Shards, cur.Shards[ri].Speedup))
		}
	}

	// Cross-shard determinism: two recoveries of the identical crash at
	// the widest count must replay and apply the same record counts.
	switch d := cur.Determinism; {
	case d == nil:
		if widest > 1 {
			fails = append(fails, "no determinism check in the current run")
		}
	case d.Runs < 2:
		fails = append(fails, fmt.Sprintf("determinism check ran only %d time(s)", d.Runs))
	case !d.RedoRecordsEqual || !d.AppliedEqual || !d.CLRsEqual:
		fails = append(fails, fmt.Sprintf(
			"cross-shard recovery is nondeterministic at %d shards: redo=%v applied=%v clrs=%v",
			d.Shards, d.RedoRecordsEqual, d.AppliedEqual, d.CLRsEqual))
	}

	// Per-count redo windows are deterministic for fixed flags.
	baseBy := make(map[int]int64, len(base.Shards))
	for _, s := range base.Shards {
		baseBy[s.Shards] = s.RedoRecords
	}
	for _, s := range cur.Shards {
		baseN, ok := baseBy[s.Shards]
		if !ok || baseN == 0 {
			continue
		}
		drift := float64(s.RedoRecords-baseN) / float64(baseN)
		if drift > tol || drift < -tol {
			fails = append(fails, fmt.Sprintf(
				"shards=%d redo window: %d records vs baseline %d (drift %.0f%% > %.0f%%)",
				s.Shards, s.RedoRecords, baseN, drift*100, tol*100))
		}
	}
	return fails
}

// diffRecoverySLO gates the recovery-SLO report: the budget-mode
// Checkpointer must demonstrably work on both devices, measured replay
// must land near the budget, and the parallel recovery must be
// byte-identical to the serial one (see the package comment).
func diffRecoverySLO(basePath, curPath string, tol, slackMS float64) []string {
	var base, cur sloReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	if len(cur.SLO) == 0 {
		return []string{"current run has no SLO entries"}
	}
	devices := map[string]bool{}
	for _, s := range cur.SLO {
		devices[s.Device] = true
		name := fmt.Sprintf("%s budget=%.0fms", s.Device, s.BudgetMS)
		if s.TrafficBytes <= 0 {
			fails = append(fails, name+": live engine drove no traffic")
		}
		if s.BudgetTriggers < 1 {
			fails = append(fails, name+": the replay estimate never triggered a checkpoint")
		}
		if s.CheckpointsTaken < s.BudgetTriggers {
			fails = append(fails, fmt.Sprintf(
				"%s: %d checkpoints taken < %d budget triggers", name, s.CheckpointsTaken, s.BudgetTriggers))
		}
		if ceiling := s.BudgetMS*(1+tol) + slackMS; s.ReplayMS > ceiling {
			fails = append(fails, fmt.Sprintf(
				"%s: replay took %.2fms > %.2fms (budget + %.0f%% + %.0fms slack): the SLO knob did not hold",
				name, s.ReplayMS, ceiling, tol*100, slackMS))
		}
		if s.LosersUndone <= 0 || s.CLRsParallel <= 0 {
			fails = append(fails, fmt.Sprintf(
				"%s: recovery undid %d losers with %d CLRs; the crash had losers in flight",
				name, s.LosersUndone, s.CLRsParallel))
		}
		if s.CLRsParallel != s.CLRsSerial {
			fails = append(fails, fmt.Sprintf(
				"%s: parallel recovery wrote %d CLRs, serial wrote %d — must be identical",
				name, s.CLRsParallel, s.CLRsSerial))
		}
		if !s.LogEndEqual {
			fails = append(fails, name+": parallel and serial recoveries left different log ends")
		}
	}
	for _, dev := range []string{"sim", "file"} {
		if !devices[dev] {
			fails = append(fails, fmt.Sprintf("no SLO entry for the %s device", dev))
		}
	}

	// The decode-width sweep: the segmented front-end must have run wide
	// and emitted the identical record stream at every width.
	if len(cur.Decode) == 0 {
		fails = append(fails, "current run has no decode-width sweep")
		return fails
	}
	records := cur.Decode[0].DecodeRecords
	widest := cur.Decode[0]
	for _, d := range cur.Decode {
		if d.DecodeRecords != records {
			fails = append(fails, fmt.Sprintf(
				"decode record count varies with width: %d at %d workers vs %d at %d",
				d.DecodeRecords, d.Workers, records, cur.Decode[0].Workers))
		}
		if d.Workers > widest.Workers {
			widest = d
		}
	}
	if records <= 0 {
		fails = append(fails, "decode sweep decoded no records")
	}
	if widest.Workers < 8 {
		fails = append(fails, fmt.Sprintf(
			"decode sweep stopped at %d workers; want ≥ 8", widest.Workers))
	}
	if widest.DecodeSegments <= 1 {
		fails = append(fails, fmt.Sprintf(
			"decode sweep at %d workers carved %d segment(s); parallel decode went unexercised",
			widest.Workers, widest.DecodeSegments))
	}
	return fails
}

// diffRecoveryFile gates the file-device recovery report: completion
// and determinism, not parallel shape (see the package comment).
func diffRecoveryFile(basePath, curPath string, tol float64) []string {
	var base, cur recoveryReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string

	if len(cur.Workers) == 0 {
		return []string{"current file run has no worker sweep"}
	}
	records := cur.Workers[0].RedoRecords
	for _, w := range cur.Workers {
		if w.WallRedoMS <= 0 {
			fails = append(fails, fmt.Sprintf(
				"file redo at %d workers reported %.3fms wall time; the run did not really happen", w.Workers, w.WallRedoMS))
		}
		// Every width replays the identical crash: the redo window must
		// not depend on the worker count.
		if w.RedoRecords != records {
			fails = append(fails, fmt.Sprintf(
				"file redo window varies with workers: %d records at %d workers vs %d at %d",
				w.RedoRecords, w.Workers, records, cur.Workers[0].Workers))
		}
	}
	for _, w := range cur.UndoWorkers {
		if w.WallUndoMS <= 0 {
			fails = append(fails, fmt.Sprintf(
				"file undo at %d workers reported %.3fms wall time; the run did not really happen", w.Workers, w.WallUndoMS))
		}
	}
	if len(base.UndoWorkers) > 0 && len(cur.UndoWorkers) == 0 {
		fails = append(fails, "baseline has an undo worker sweep but the current file run has none")
	}
	if cur.Checkpoint.CkptRedoRecords >= cur.Checkpoint.ColdRedoRecords {
		fails = append(fails, fmt.Sprintf(
			"checkpointing did not bound the file redo scan: %d records with ckpt ≥ %d cold",
			cur.Checkpoint.CkptRedoRecords, cur.Checkpoint.ColdRedoRecords))
	}

	checkCount := func(name string, baseN, curN int64) {
		if baseN == 0 {
			return
		}
		drift := float64(curN-baseN) / float64(baseN)
		if drift > tol || drift < -tol {
			fails = append(fails, fmt.Sprintf(
				"%s: %d records vs baseline %d (drift %.0f%% > %.0f%%)",
				name, curN, baseN, drift*100, tol*100))
		}
	}
	if len(base.Workers) > 0 {
		checkCount("file redo window", base.Workers[0].RedoRecords, records)
	}
	checkCount("file cold redo window", base.Checkpoint.ColdRedoRecords, cur.Checkpoint.ColdRedoRecords)
	checkCount("file checkpointed redo window", base.Checkpoint.CkptRedoRecords, cur.Checkpoint.CkptRedoRecords)
	if len(base.UndoWorkers) > 0 && len(cur.UndoWorkers) > 0 {
		checkCount("file undo CLR count", base.UndoWorkers[0].CLRsWritten, cur.UndoWorkers[0].CLRsWritten)
	}
	return fails
}

// diffReplica gates the log-shipping standby: exact-state failover,
// the replay-lag ceiling, applied-record determinism (within the run
// and against the baseline — the stream is deterministic, so both are
// equalities), and a positive promotion time (see the package comment).
func diffReplica(basePath, curPath string) []string {
	var base, cur replicaReport
	load(basePath, &base)
	load(curPath, &cur)
	var fails []string
	if !cur.Result.DigestMatch {
		fails = append(fails, "promoted standby digest does not match the primary's")
	}
	if cur.Result.MaxLagBytes > cur.Result.LagBoundBytes {
		fails = append(fails, fmt.Sprintf(
			"replay lag exceeded the bound: max %d bytes > %d",
			cur.Result.MaxLagBytes, cur.Result.LagBoundBytes))
	}
	if cur.Result.LagSamples == 0 {
		fails = append(fails, "no lag samples: the run drove no traffic")
	}
	if cur.Result.AppliedRecords == 0 {
		fails = append(fails, "standby applied no records")
	}
	if cur.Result.AppliedRecords != cur.Result.AppliedRecordsRun2 {
		fails = append(fails, fmt.Sprintf(
			"replay is nondeterministic: run 1 applied %d records, run 2 applied %d",
			cur.Result.AppliedRecords, cur.Result.AppliedRecordsRun2))
	}
	if base.Result.AppliedRecords != 0 && cur.Result.AppliedRecords != base.Result.AppliedRecords {
		fails = append(fails, fmt.Sprintf(
			"applied records diverged from baseline: %d vs %d (deterministic stream: must be equal)",
			cur.Result.AppliedRecords, base.Result.AppliedRecords))
	}
	if cur.Result.PromoteMS <= 0 {
		fails = append(fails, "promotion reported no wall time")
	}
	return fails
}
