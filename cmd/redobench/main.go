// Command redobench regenerates the paper's evaluation: Figure 2(a-c)
// (redo time, dirty cache fraction and ∆/BW record counts vs cache
// size), Figure 3 (redo time vs checkpoint interval, Appendix C), the
// Appendix B cost-model validation, and the Appendix D ∆-variant
// ablation.
//
// Usage:
//
//	redobench -fig 2       # Figure 2(a-c), all panels
//	redobench -fig 3       # Figure 3 (checkpoint interval sweep)
//	redobench -fig B       # Appendix B cost model
//	redobench -fig D       # Appendix D ∆-record variants
//	redobench -fig all     # everything
//	redobench -scale 10    # shrink the experiment 10× (faster)
//	redobench -quiet       # suppress progress lines
package main

import (
	"flag"
	"fmt"
	"os"

	"logrec/internal/harness"
)

func main() {
	fig := flag.String("fig", "2", "which figure to regenerate: 2, 3, B, D or all")
	scale := flag.Int("scale", 1, "shrink the experiment by this factor (1 = paper-proportional full scale)")
	cacheFrac := flag.Float64("cache", 0.16, "cache fraction for figures 3, B and D (the paper's 512MB point)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg := harness.DefaultConfig().Scaled(*scale)
	progress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	if *quiet {
		progress = nil
	}

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "redobench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	doFig2 := func() error {
		rows, err := harness.RunFigure2(cfg, harness.DefaultCacheFractions(), progress)
		if err != nil {
			return err
		}
		harness.PrintFigure2(os.Stdout, rows)
		return nil
	}
	doFig3 := func() error {
		rows, err := harness.RunFigure3(cfg, []int{1, 5, 10}, *cacheFrac, progress)
		if err != nil {
			return err
		}
		harness.PrintFigure3(os.Stdout, rows)
		return nil
	}
	doB := func() error {
		rows, err := harness.RunAppendixB(cfg, *cacheFrac)
		if err != nil {
			return err
		}
		harness.PrintAppendixB(os.Stdout, rows)
		return nil
	}
	doD := func() error {
		rows, err := harness.RunAppendixD(cfg, *cacheFrac)
		if err != nil {
			return err
		}
		harness.PrintAppendixD(os.Stdout, rows)
		return nil
	}

	switch *fig {
	case "2", "2a", "2b", "2c":
		run("figure 2", doFig2)
	case "3":
		run("figure 3", doFig3)
	case "B", "b":
		run("appendix B", doB)
	case "D", "d":
		run("appendix D", doD)
	case "all":
		run("figure 2", doFig2)
		fmt.Println()
		run("figure 3", doFig3)
		fmt.Println()
		run("appendix B", doB)
		fmt.Println()
		run("appendix D", doD)
	default:
		fmt.Fprintf(os.Stderr, "redobench: unknown -fig %q (want 2, 3, B, D or all)\n", *fig)
		os.Exit(2)
	}
}
