// Command logstats runs the paper's workload and reports the log's
// composition: record counts and bytes by type, and the share taken by
// the recovery-preparation records (∆-log, BW-log, SMO, checkpoint).
// It quantifies §5.1's claim that "this auxiliary information is a very
// small part of the log", and Appendix D's logging-overhead comparison
// across ∆-record variants.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"logrec/internal/harness"
	"logrec/internal/tracker"
	"logrec/internal/wal"
)

func main() {
	scale := flag.Int("scale", 4, "shrink the experiment by this factor")
	variant := flag.String("variant", "standard", "∆-record variant: standard, perfect or reduced")
	cacheFrac := flag.Float64("cache", 0.16, "cache fraction of the table")
	flag.Parse()

	cfg := harness.DefaultConfig().Scaled(*scale).WithCacheFraction(*cacheFrac)
	switch *variant {
	case "standard":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaStandard
	case "perfect":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaPerfect
	case "reduced":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaReduced
	default:
		fmt.Fprintf(os.Stderr, "logstats: unknown -variant %q\n", *variant)
		os.Exit(2)
	}

	res, err := harness.BuildCrash(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logstats: %v\n", err)
		os.Exit(1)
	}

	type slot struct {
		count int64
		bytes int64
	}
	byType := map[wal.Type]*slot{}
	var total slot

	sc := res.Crash.Log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var order []wal.Type
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logstats: scan: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			break
		}
		s, seen := byType[rec.Type()]
		if !seen {
			s = &slot{}
			byType[rec.Type()] = s
			order = append(order, rec.Type())
		}
		s.count++
		total.count++
	}

	// Second pass for sizes: pair each record with the next LSN.
	sc = res.Crash.Log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var prevType wal.Type
	var prevLSN wal.LSN
	first := true
	account := func(t wal.Type, from, to wal.LSN) {
		n := int64(to - from)
		byType[t].bytes += n
		total.bytes += n
	}
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logstats: size scan: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			if !first {
				account(prevType, prevLSN, res.Crash.Log.EndLSN())
			}
			break
		}
		if !first {
			account(prevType, prevLSN, lsn)
		}
		prevType, prevLSN, first = rec.Type(), lsn, false
	}

	sort.Slice(order, func(i, j int) bool { return byType[order[i]].bytes > byType[order[j]].bytes })

	fmt.Printf("workload: %d rows, %d committed txns, %d updates, %d checkpoints (∆ variant: %s)\n",
		cfg.Workload.Rows, res.TxnsCommitted, res.UpdatesRun, res.CheckpointsRun, *variant)
	fmt.Printf("stable log: %d bytes, %d records\n\n", res.LogBytes, total.count)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "record type\tcount\tbytes\tshare")
	var auxBytes int64
	for _, t := range order {
		s := byType[t]
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.2f%%\n", t, s.count, s.bytes, 100*float64(s.bytes)/float64(total.bytes))
		switch t {
		case wal.TypeDelta, wal.TypeBW, wal.TypeSMO, wal.TypeBeginCkpt, wal.TypeEndCkpt, wal.TypeRSSP:
			auxBytes += s.bytes
		}
	}
	tw.Flush()
	fmt.Printf("\nrecovery-preparation records (∆+BW+SMO+ckpt+RSSP): %d bytes = %.2f%% of the log\n",
		auxBytes, 100*float64(auxBytes)/float64(total.bytes))
	fmt.Println("(§5.1: the auxiliary information is a very small part of the log)")
}
