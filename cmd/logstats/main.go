// Command logstats runs the paper's workload and reports the log's
// composition: record counts and bytes by type, and the share taken by
// the recovery-preparation records (∆-log, BW-log, SMO, checkpoint).
// It quantifies §5.1's claim that "this auxiliary information is a very
// small part of the log", and Appendix D's logging-overhead comparison
// across ∆-record variants.
//
// With -segments it instead reports the parallel decode front-end's
// view of the same log: how the segmented scanner (wal.SegScanner)
// carves it, per-segment record counts and decode cost, and whether
// boundary discovery ever missed (resyncs) — the tool for judging
// decode balance before reaching for more -decode-workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"logrec/internal/harness"
	"logrec/internal/tracker"
	"logrec/internal/wal"
)

func main() {
	scale := flag.Int("scale", 4, "shrink the experiment by this factor")
	variant := flag.String("variant", "standard", "∆-record variant: standard, perfect or reduced")
	cacheFrac := flag.Float64("cache", 0.16, "cache fraction of the table")
	segments := flag.Bool("segments", false, "report the segmented parallel decode breakdown instead of record composition")
	decodeWorkers := flag.Int("decode-workers", 0, "decode workers for -segments (0 = min(GOMAXPROCS, 8))")
	segBytes := flag.Int("seg-bytes", 0, "segment size in bytes for -segments (0 = 256 KiB)")
	flag.Parse()

	cfg := harness.DefaultConfig().Scaled(*scale).WithCacheFraction(*cacheFrac)
	switch *variant {
	case "standard":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaStandard
	case "perfect":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaPerfect
	case "reduced":
		cfg.Engine.DC.Tracker.Variant = tracker.DeltaReduced
	default:
		fmt.Fprintf(os.Stderr, "logstats: unknown -variant %q\n", *variant)
		os.Exit(2)
	}

	res, err := harness.BuildCrash(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logstats: %v\n", err)
		os.Exit(1)
	}

	if *segments {
		segmentReport(res, *decodeWorkers, *segBytes)
		return
	}

	type slot struct {
		count int64
		bytes int64
	}
	byType := map[wal.Type]*slot{}
	var total slot

	sc := res.Crash.Log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var order []wal.Type
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logstats: scan: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			break
		}
		s, seen := byType[rec.Type()]
		if !seen {
			s = &slot{}
			byType[rec.Type()] = s
			order = append(order, rec.Type())
		}
		s.count++
		total.count++
	}

	// Second pass for sizes: pair each record with the next LSN.
	sc = res.Crash.Log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var prevType wal.Type
	var prevLSN wal.LSN
	first := true
	account := func(t wal.Type, from, to wal.LSN) {
		n := int64(to - from)
		byType[t].bytes += n
		total.bytes += n
	}
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logstats: size scan: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			if !first {
				account(prevType, prevLSN, res.Crash.Log.EndLSN())
			}
			break
		}
		if !first {
			account(prevType, prevLSN, lsn)
		}
		prevType, prevLSN, first = rec.Type(), lsn, false
	}

	sort.Slice(order, func(i, j int) bool { return byType[order[i]].bytes > byType[order[j]].bytes })

	fmt.Printf("workload: %d rows, %d committed txns, %d updates, %d checkpoints (∆ variant: %s)\n",
		cfg.Workload.Rows, res.TxnsCommitted, res.UpdatesRun, res.CheckpointsRun, *variant)
	fmt.Printf("stable log: %d bytes, %d records\n\n", res.LogBytes, total.count)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "record type\tcount\tbytes\tshare")
	var auxBytes int64
	for _, t := range order {
		s := byType[t]
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.2f%%\n", t, s.count, s.bytes, 100*float64(s.bytes)/float64(total.bytes))
		switch t {
		case wal.TypeDelta, wal.TypeBW, wal.TypeSMO, wal.TypeBeginCkpt, wal.TypeEndCkpt, wal.TypeRSSP:
			auxBytes += s.bytes
		}
	}
	tw.Flush()
	fmt.Printf("\nrecovery-preparation records (∆+BW+SMO+ckpt+RSSP): %d bytes = %.2f%% of the log\n",
		auxBytes, 100*float64(auxBytes)/float64(total.bytes))
	fmt.Println("(§5.1: the auxiliary information is a very small part of the log)")
}

// segmentReport drains a SegScanner over the whole stable log and
// prints the per-segment breakdown the decode front-end saw.
func segmentReport(res *harness.CrashResult, workers, segBytes int) {
	sc := res.Crash.Log.NewSegScanner(wal.FirstLSN(), nil, wal.ScanCost{},
		wal.SegConfig{Workers: workers, SegmentBytes: segBytes})
	defer sc.Close()
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logstats: segment scan: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			break
		}
	}
	st := sc.Stats()

	fmt.Printf("workload: %d committed txns, %d updates, %d checkpoints\n",
		res.TxnsCommitted, res.UpdatesRun, res.CheckpointsRun)
	fmt.Printf("stable log: %d bytes in %d segments (%d decode workers)\n",
		res.LogBytes, st.Segments, st.Workers)
	fmt.Printf("records: %d, resyncs: %d, stitcher stall: %v, log pages read: %d\n\n",
		st.Records, st.Resyncs, st.Stall, sc.PagesRead())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "segment\tstart\tbytes\trecords\tdecode\tnote")
	for i, s := range st.Segment {
		note := ""
		switch {
		case s.Skipped:
			note = "skipped (swallowed by straddling frame)"
		case s.Resynced:
			note = "resynced (serial re-decode)"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%s\n",
			i, s.Start, int64(s.End-s.Start), s.Records, s.DecodeTime.Round(time.Microsecond), note)
	}
	tw.Flush()
	fmt.Println("\n(parallel decode stitches these back into exact log order; resyncs cost time, never correctness)")
}
