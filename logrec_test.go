package logrec_test

import (
	"bytes"
	"fmt"
	"testing"

	"logrec"
)

// TestPublicAPIEndToEnd exercises the exported surface exactly as the
// README shows it.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := logrec.DefaultConfig()
	cfg.CachePages = 256

	eng, err := logrec.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(5_000, func(k uint64) []byte {
		return []byte(fmt.Sprintf("value-%08d", k))
	}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 50; i++ {
		txn := eng.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64((i*10 + u) % 5000)
			if err := eng.TC.Update(txn, cfg.TableID, k, []byte(fmt.Sprintf("upd-%03d-%05d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	crash := eng.Crash()

	for _, m := range logrec.Methods() {
		rec, met, err := logrec.Recover(crash, m, logrec.DefaultOptions(cfg))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if met.Method != m {
			t.Fatalf("metrics method %v, want %v", met.Method, m)
		}
		v, found, err := rec.DC.Tree().Search(10)
		if err != nil || !found {
			t.Fatalf("%v: key 10 missing", m)
		}
		if !bytes.HasPrefix(v, []byte("upd-")) {
			t.Fatalf("%v: key 10 = %q, want an updated value", m, v)
		}
	}
}

// TestExperimentAPI exercises the harness re-exports.
func TestExperimentAPI(t *testing.T) {
	cfg := logrec.DefaultExperimentConfig().Scaled(40).WithCacheFraction(0.08)
	res, err := logrec.BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mets, err := logrec.RunAll(res, logrec.DefaultOptions(cfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	if len(mets) != 5 {
		t.Fatalf("%d methods", len(mets))
	}
	if mets[logrec.Log0].RedoTotal < mets[logrec.Log2].RedoTotal {
		t.Fatal("Log0 beat Log2")
	}
	single, err := logrec.RunRecovery(res, logrec.SQL2, logrec.DefaultOptions(cfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	if single.Method != logrec.SQL2 {
		t.Fatal("wrong method in metrics")
	}
}

// TestDeltaVariantsExported checks the Appendix D variant knob via the
// public API.
func TestDeltaVariantsExported(t *testing.T) {
	for _, v := range []logrec.DeltaVariant{logrec.DeltaStandard, logrec.DeltaPerfect, logrec.DeltaReduced} {
		cfg := logrec.DefaultExperimentConfig().Scaled(40).WithCacheFraction(0.08)
		cfg.Engine.DC.Tracker.Variant = v
		res, err := logrec.BuildCrash(cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if _, err := logrec.RunRecovery(res, logrec.Log1, logrec.DefaultOptions(cfg.Engine)); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}
