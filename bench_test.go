// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5.3, Appendices B-D). Each benchmark reports the redo
// time in *virtual* milliseconds (vms) — the deterministic simulated
// quantity the paper's figures plot — rather than the wall-clock
// ns/op, which only measures how fast the simulator itself runs.
//
// The experiments run at 1/4 of the paper-proportional default scale so
// `go test -bench=.` completes quickly; set LOGREC_BENCH_SCALE=1 for
// the full-scale sweep (cmd/redobench prints the same numbers with
// nicer formatting).
package logrec_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"logrec"
	"logrec/internal/core"
	"logrec/internal/harness"
	"logrec/internal/tracker"
)

func benchScale() int {
	if s := os.Getenv("LOGREC_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 4
}

// crashCache memoises built crashes per configuration key so each
// sub-benchmark replays an identical crash without rebuilding it.
var (
	crashMu    sync.Mutex
	crashCache = map[string]*harness.CrashResult{}
)

func getCrash(b *testing.B, key string, build func() (harness.Config, error)) (*harness.CrashResult, harness.Config) {
	b.Helper()
	crashMu.Lock()
	defer crashMu.Unlock()
	cfg, err := build()
	if err != nil {
		b.Fatal(err)
	}
	if res, ok := crashCache[key]; ok {
		return res, cfg
	}
	res, err := harness.BuildCrash(cfg)
	if err != nil {
		b.Fatal(err)
	}
	crashCache[key] = res
	return res, cfg
}

func baseConfig() harness.Config {
	return harness.DefaultConfig().Scaled(benchScale())
}

// reportRecovery runs one recovery per iteration and reports the
// virtual redo time plus IO counts.
func reportRecovery(b *testing.B, res *harness.CrashResult, m core.Method, opt core.Options) {
	b.Helper()
	var last *core.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met, err := harness.RunRecovery(res, m, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = met
	}
	b.StopTimer()
	b.ReportMetric(last.RedoTotal.Milliseconds(), "vms-redo")
	b.ReportMetric(float64(last.DataPageFetches), "data-fetches")
	b.ReportMetric(float64(last.IndexPageFetches), "index-fetches")
	b.ReportMetric(float64(last.DPTSize), "dpt-entries")
}

// BenchmarkFigure2aRedoTime regenerates Figure 2(a): redo time for all
// five methods across the cache-size sweep.
func BenchmarkFigure2aRedoTime(b *testing.B) {
	for _, frac := range harness.DefaultCacheFractions() {
		frac := frac
		res, cfg := getCrash(b, fmt.Sprintf("fig2-%v", frac), func() (harness.Config, error) {
			return baseConfig().WithCacheFraction(frac), nil
		})
		opt := core.DefaultOptions(cfg.Engine)
		for _, m := range logrec.Methods() {
			m := m
			b.Run(fmt.Sprintf("cache=%02.0f%%/%v", frac*100, m), func(b *testing.B) {
				reportRecovery(b, res, m, opt)
			})
		}
	}
}

// BenchmarkFigure2bDirtyPct regenerates Figure 2(b): the dirty fraction
// of the cache at the crash, per cache size.
func BenchmarkFigure2bDirtyPct(b *testing.B) {
	for _, frac := range harness.DefaultCacheFractions() {
		frac := frac
		b.Run(fmt.Sprintf("cache=%02.0f%%", frac*100), func(b *testing.B) {
			res, _ := getCrash(b, fmt.Sprintf("fig2-%v", frac), func() (harness.Config, error) {
				return baseConfig().WithCacheFraction(frac), nil
			})
			for i := 0; i < b.N; i++ {
				_ = res.DirtyPct()
			}
			b.ReportMetric(res.DirtyPct(), "dirty-pct")
			b.ReportMetric(float64(res.DirtyAtCrash), "dirty-pages")
		})
	}
}

// BenchmarkFigure2cLogRecords regenerates Figure 2(c): ∆- and BW-log
// records seen by the prep pass, per cache size.
func BenchmarkFigure2cLogRecords(b *testing.B) {
	for _, frac := range harness.DefaultCacheFractions() {
		frac := frac
		b.Run(fmt.Sprintf("cache=%02.0f%%", frac*100), func(b *testing.B) {
			res, cfg := getCrash(b, fmt.Sprintf("fig2-%v", frac), func() (harness.Config, error) {
				return baseConfig().WithCacheFraction(frac), nil
			})
			opt := core.DefaultOptions(cfg.Engine)
			var met *core.Metrics
			for i := 0; i < b.N; i++ {
				m, err := harness.RunRecovery(res, core.Log1, opt)
				if err != nil {
					b.Fatal(err)
				}
				met = m
			}
			b.ReportMetric(float64(met.DeltaSeen), "delta-records")
			b.ReportMetric(float64(met.BWSeen), "bw-records")
		})
	}
}

// BenchmarkFigure3CheckpointInterval regenerates Figure 3 (Appendix C):
// redo time as the checkpoint interval grows 1×, 5×, 10×.
func BenchmarkFigure3CheckpointInterval(b *testing.B) {
	for _, mult := range []int{1, 5, 10} {
		mult := mult
		res, cfg := getCrash(b, fmt.Sprintf("fig3-%d", mult), func() (harness.Config, error) {
			c := baseConfig().WithCacheFraction(0.16)
			c.CheckpointEveryUpdates *= mult
			c.UpdatesAfterLastCkpt *= mult
			if mult > 1 {
				c.CrashAfterCheckpoints = 3
			}
			return c, nil
		})
		opt := core.DefaultOptions(cfg.Engine)
		for _, m := range logrec.Methods() {
			m := m
			b.Run(fmt.Sprintf("interval=x%d/%v", mult, m), func(b *testing.B) {
				reportRecovery(b, res, m, opt)
			})
		}
	}
}

// BenchmarkAppendixBCostModel regenerates Appendix B's validation of
// Equations 1-3: data-page fetches vs the closed-form prediction.
func BenchmarkAppendixBCostModel(b *testing.B) {
	res, cfg := getCrash(b, "fig2-0.16", func() (harness.Config, error) {
		return baseConfig().WithCacheFraction(0.16), nil
	})
	opt := core.DefaultOptions(cfg.Engine)
	for _, m := range []core.Method{core.Log0, core.Log1, core.SQL1} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var met *core.Metrics
			for i := 0; i < b.N; i++ {
				got, err := harness.RunRecovery(res, m, opt)
				if err != nil {
					b.Fatal(err)
				}
				met = got
			}
			var predicted float64
			switch m {
			case core.Log0:
				predicted = float64(met.RedoRecords)
			case core.Log1:
				predicted = float64(met.DPTSize) + float64(met.TailRecords)
			case core.SQL1:
				predicted = float64(met.DPTSize)
			}
			b.ReportMetric(float64(met.DataPageFetches), "data-fetches")
			b.ReportMetric(predicted, "model-predicted")
		})
	}
}

// BenchmarkAppendixDVariants regenerates the Appendix D ablation: Log1
// redo under the three ∆-record fidelity variants.
func BenchmarkAppendixDVariants(b *testing.B) {
	for _, v := range []tracker.Variant{tracker.DeltaStandard, tracker.DeltaPerfect, tracker.DeltaReduced} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			res, cfg := getCrash(b, fmt.Sprintf("appD-%v", v), func() (harness.Config, error) {
				c := baseConfig().WithCacheFraction(0.16)
				c.Engine.DC.Tracker.Variant = v
				return c, nil
			})
			opt := core.DefaultOptions(cfg.Engine)
			var met *core.Metrics
			for i := 0; i < b.N; i++ {
				got, err := harness.RunRecovery(res, core.Log1, opt)
				if err != nil {
					b.Fatal(err)
				}
				met = got
			}
			b.ReportMetric(met.RedoTotal.Milliseconds(), "vms-redo")
			b.ReportMetric(float64(met.DPTSize), "dpt-entries")
			b.ReportMetric(float64(res.LogBytes), "log-bytes")
		})
	}
}

// BenchmarkPrefetchStrategies is the DESIGN.md ablation of Log2's
// prefetch source: the paper's PF-list vs DPT-rLSN order (Appendix A.2
// discusses both).
func BenchmarkPrefetchStrategies(b *testing.B) {
	res, cfg := getCrash(b, "fig2-0.16", func() (harness.Config, error) {
		return baseConfig().WithCacheFraction(0.16), nil
	})
	for _, s := range []core.PrefetchStrategy{core.PrefetchPFList, core.PrefetchDPTOrder} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			opt := core.DefaultOptions(cfg.Engine)
			opt.PrefetchStrategy = s
			reportRecovery(b, res, core.Log2, opt)
		})
	}
}

// BenchmarkIndexPreload is the DESIGN.md ablation of Appendix A.1:
// loading all index pages up front vs demand-loading them during redo.
func BenchmarkIndexPreload(b *testing.B) {
	res, cfg := getCrash(b, "fig2-0.16", func() (harness.Config, error) {
		return baseConfig().WithCacheFraction(0.16), nil
	})
	for _, preload := range []bool{true, false} {
		preload := preload
		name := "preload"
		if !preload {
			name = "on-demand"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultOptions(cfg.Engine)
			opt.IndexPreload = preload
			reportRecovery(b, res, core.Log2, opt)
		})
	}
}

// BenchmarkWorkloadLocality explores Appendix B's locality remark: a
// zipfian workload touches fewer distinct pages, shrinking the DPT and
// redo time relative to the paper's worst-case uniform workload.
func BenchmarkWorkloadLocality(b *testing.B) {
	for _, zipf := range []bool{false, true} {
		zipf := zipf
		name := "uniform"
		if zipf {
			name = "zipf"
		}
		b.Run(name, func(b *testing.B) {
			res, cfg := getCrash(b, "locality-"+name, func() (harness.Config, error) {
				c := baseConfig().WithCacheFraction(0.16)
				if zipf {
					c.Workload.Dist = 1 // workload.Zipf
					c.Workload.ZipfS = 1.2
				}
				return c, nil
			})
			opt := core.DefaultOptions(cfg.Engine)
			reportRecovery(b, res, core.Log1, opt)
		})
	}
}
