// Sidebyside: the paper's controlled comparison (§5.1) in miniature.
// One workload, one crash, one shared log — five recovery methods
// replay it independently over copy-on-write forks, and the run prints
// each method's phase times, IO behaviour and redo-test outcomes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"logrec"
)

func main() {
	cfg := logrec.DefaultExperimentConfig().Scaled(4).WithCacheFraction(0.16)
	fmt.Printf("building crash: %d rows, cache %d pages, checkpoint every %d updates\n",
		cfg.Workload.Rows, cfg.Engine.CachePages, cfg.CheckpointEveryUpdates)

	res, err := logrec.BuildCrash(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed after %d committed transactions; %d of %d cache pages dirty (%.1f%%)\n\n",
		res.TxnsCommitted, res.DirtyAtCrash, res.CachePages, res.DirtyPct())

	opt := logrec.DefaultOptions(cfg.Engine)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tredo\tprep\tundo\tDPT\tdata IO\tindex IO\tstall time\tprefetched\tskipped(DPT/rLSN/pLSN)")
	for _, m := range logrec.Methods() {
		met, err := logrec.RunRecovery(res, m, opt)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		fmt.Fprintf(tw, "%v\t%v\t%v\t%v\t%d\t%d\t%d\t%v\t%d\t%d/%d/%d\n",
			m, met.RedoTotal, met.PrepTime, met.UndoTime, met.DPTSize,
			met.DataPageFetches, met.IndexPageFetches, met.StallTime,
			met.PrefetchPages, met.SkippedDPT, met.SkippedRLSN, met.SkippedPLSN)
	}
	tw.Flush()

	fmt.Println("\nEvery method recovered byte-identical state (verified against the oracle).")
}
