// Sidebyside: the paper's controlled comparison (§5.1) in miniature.
// One workload, one crash, one shared log — five recovery methods
// replay it independently over copy-on-write forks, and the run prints
// each method's phase times, IO behaviour and redo-test outcomes.
// The harness's raw byte-oracle workload is the low-level plane; the
// epilogue shows a recovered fork serving the typed executor API.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"logrec"
)

func main() {
	cfg := logrec.DefaultExperimentConfig().Scaled(4).WithCacheFraction(0.16)
	fmt.Printf("building crash: %d rows, cache %d pages, checkpoint every %d updates\n",
		cfg.Workload.Rows, cfg.Engine.CachePages, cfg.CheckpointEveryUpdates)

	res, err := logrec.BuildCrash(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed after %d committed transactions; %d of %d cache pages dirty (%.1f%%)\n\n",
		res.TxnsCommitted, res.DirtyAtCrash, res.CachePages, res.DirtyPct())

	opt := logrec.DefaultOptions(cfg.Engine)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tredo\tprep\tundo\tDPT\tdata IO\tindex IO\tstall time\tprefetched\tskipped(DPT/rLSN/pLSN)")
	for _, m := range logrec.Methods() {
		met, err := logrec.RunRecovery(res, m, opt)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		fmt.Fprintf(tw, "%v\t%v\t%v\t%v\t%d\t%d\t%d\t%v\t%d\t%d/%d/%d\n",
			m, met.RedoTotal, met.PrepTime, met.UndoTime, met.DPTSize,
			met.DataPageFetches, met.IndexPageFetches, met.StallTime,
			met.PrefetchPages, met.SkippedDPT, met.SkippedRLSN, met.SkippedPLSN)
	}
	tw.Flush()

	fmt.Println("\nEvery method recovered byte-identical state (verified against the oracle).")

	// Epilogue: a recovered fork is immediately live behind the typed
	// executor — insert schema-shaped audit rows above the workload's
	// key range and query them back through the operator tree.
	auditSchema := logrec.MustSchema(
		logrec.Column{Name: "label", Type: logrec.TString},
		logrec.Column{Name: "score", Type: logrec.TFloat64},
		logrec.Column{Name: "even", Type: logrec.TBool},
	)
	recovered, _, err := logrec.Recover(res.Crash, logrec.Log2, opt)
	if err != nil {
		log.Fatal(err)
	}
	ex := logrec.NewExecutor(recovered.NewSessionManager(0).NewSession(),
		cfg.Engine.TableID, auditSchema)
	base := uint64(cfg.Workload.Rows)
	const audits = 16
	if err := ex.Txn(func() error {
		for i := uint64(0); i < audits; i++ {
			if err := ex.Insert(base+i, fmt.Sprintf("audit-%02d", i), 0.5*float64(i), i%2 == 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	n, err := ex.Scan(base, base+audits-1).
		Where("even", logrec.Eq, true).
		Where("score", logrec.Ge, 2.0).
		Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("typed epilogue on the Log2 fork: %d audit rows inserted, %d match even ∧ score ≥ 2\n",
		audits, n)
}
