// Banking: multi-key transfer transactions with invariant checking
// across aborts and a crash. The invariant — total balance is conserved
// — must hold (a) during normal operation, (b) after explicit aborts
// roll transfers back, and (c) after crash recovery rolls back the
// transfer in flight at the crash.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"logrec"
)

const (
	accounts       = 2_000
	initialBalance = 1_000
)

func encodeBalance(b uint64) []byte {
	// Pad to a realistic row width; balance in the first 8 bytes.
	v := make([]byte, 64)
	binary.BigEndian.PutUint64(v, b)
	return v
}

func decodeBalance(v []byte) uint64 { return binary.BigEndian.Uint64(v) }

func totalBalance(eng *logrec.Engine) uint64 {
	var total uint64
	err := eng.DC.Tree().Scan(func(_ uint64, v []byte) error {
		total += decodeBalance(v)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return total
}

func main() {
	cfg := logrec.DefaultConfig()
	cfg.CachePages = 256
	eng, err := logrec.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Load(accounts, func(uint64) []byte {
		return encodeBalance(initialBalance)
	}); err != nil {
		log.Fatal(err)
	}
	want := uint64(accounts * initialBalance)
	fmt.Printf("opened %d accounts, total balance %d\n", accounts, want)

	rng := rand.New(rand.NewSource(2026))
	commits, aborts := 0, 0
	for i := 0; i < 500; i++ {
		from := uint64(rng.Intn(accounts))
		to := uint64(rng.Intn(accounts))
		if from == to {
			continue
		}
		amount := uint64(rng.Intn(2 * initialBalance)) // sometimes too much

		txn := eng.TC.Begin()
		fv, found, err := eng.TC.Read(txn, cfg.TableID, from)
		if err != nil || !found {
			log.Fatalf("read %d: found=%v err=%v", from, found, err)
		}
		balance := decodeBalance(fv)

		// Debit first — then discover insufficient funds and abort,
		// exercising transactional rollback through the DC.
		debited := balance - amount // may underflow; abort below if so
		if err := eng.TC.Update(txn, cfg.TableID, from, encodeBalance(debited)); err != nil {
			log.Fatal(err)
		}
		if amount > balance {
			if err := eng.TC.Abort(txn); err != nil {
				log.Fatal(err)
			}
			aborts++
			continue
		}
		tv, _, err := eng.TC.Read(txn, cfg.TableID, to)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.TC.Update(txn, cfg.TableID, to, encodeBalance(decodeBalance(tv)+amount)); err != nil {
			log.Fatal(err)
		}
		if err := eng.TC.Commit(txn); err != nil {
			log.Fatal(err)
		}
		commits++
		if commits%100 == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("ran %d transfers (%d aborted for insufficient funds)\n", commits+aborts, aborts)
	if got := totalBalance(eng); got != want {
		log.Fatalf("conservation violated before crash: total %d, want %d", got, want)
	}
	fmt.Println("invariant holds after aborts: total balance conserved")

	// Crash mid-transfer: debited but not yet credited.
	txn := eng.TC.Begin()
	fv, _, err := eng.TC.Read(txn, cfg.TableID, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.TC.Update(txn, cfg.TableID, 7, encodeBalance(decodeBalance(fv)-500)); err != nil {
		log.Fatal(err)
	}
	eng.TC.SendEOSL()
	crash := eng.Crash()
	fmt.Println("crashed mid-transfer (debit logged, credit never happened)")

	for _, m := range logrec.Methods() {
		recovered, met, err := logrec.Recover(crash, m, logrec.DefaultOptions(cfg))
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		got := totalBalance(recovered)
		status := "OK"
		if got != want {
			status = "VIOLATED"
		}
		fmt.Printf("%-4v: total %d (%s), losers undone %d, redo %v\n",
			m, got, status, met.LosersUndone, met.RedoTotal)
		if got != want {
			log.Fatalf("%v lost money", m)
		}
	}
	fmt.Println("all five recovery methods conserve the total balance")
}
