// Banking: multi-key transfer transactions with invariant checking
// across aborts and a crash, written against the typed executor — a
// schema with named columns, transactional closures, a batched read
// round trip and typed scans — instead of raw byte-slice point ops.
// The invariant — total balance is conserved — must hold (a) during
// normal operation, (b) after explicit aborts roll transfers back, and
// (c) after crash recovery rolls back the transfer in flight at the
// crash.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"logrec"
)

const (
	accounts       = 2_000
	initialBalance = 1_000
)

// accountSchema shapes an account row: who owns it and what it holds.
var accountSchema = logrec.MustSchema(
	logrec.Column{Name: "owner", Type: logrec.TString},
	logrec.Column{Name: "balance", Type: logrec.TInt64},
)

// errInsufficient aborts a transfer from inside the transactional
// closure; Executor.Txn rolls the debit back and returns it.
var errInsufficient = errors.New("insufficient funds")

func totalBalance(ex *logrec.Executor) int64 {
	var total int64
	err := ex.ScanAll().Project("balance").Each(func(r logrec.ExecRow) error {
		total += r.Cols[0].(int64)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return total
}

// transfer moves amount between two accounts in one transaction: both
// balances arrive in a single batched read round trip, then the debit
// and credit land as column updates. Returning an error from the
// closure aborts the whole transfer.
func transfer(ex *logrec.Executor, from, to uint64, amount int64) error {
	return ex.Txn(func() error {
		res, err := ex.NewBatch().Read(from).Read(to).Run()
		if err != nil {
			return err
		}
		if !res[0].Found || !res[1].Found {
			return logrec.ErrKeyNotFound
		}
		fromBal := res[0].Cols[1].(int64)
		// Debit first — then discover insufficient funds and bail,
		// exercising transactional rollback through the DC.
		if err := ex.UpdateCol(from, "balance", fromBal-amount); err != nil {
			return err
		}
		if amount > fromBal {
			return errInsufficient
		}
		return ex.UpdateCol(to, "balance", res[1].Cols[1].(int64)+amount)
	})
}

func main() {
	cfg := logrec.DefaultConfig()
	cfg.CachePages = 256
	eng, err := logrec.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Load(accounts, func(k uint64) []byte {
		row, err := accountSchema.Encode(fmt.Sprintf("acct-%04d", k), int64(initialBalance))
		if err != nil {
			log.Fatal(err)
		}
		return row
	}); err != nil {
		log.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	ex := logrec.NewExecutor(mgr.NewSession(), cfg.TableID, accountSchema)
	const want = int64(accounts * initialBalance)
	fmt.Printf("opened %d accounts, total balance %d\n", accounts, want)

	rng := rand.New(rand.NewSource(2026))
	commits, aborts := 0, 0
	for i := 0; i < 500; i++ {
		from := uint64(rng.Intn(accounts))
		to := uint64(rng.Intn(accounts))
		if from == to {
			continue
		}
		amount := int64(rng.Intn(2 * initialBalance)) // sometimes too much
		switch err := transfer(ex, from, to, amount); {
		case err == nil:
			commits++
			if commits%100 == 0 {
				if err := mgr.Checkpoint(); err != nil {
					log.Fatal(err)
				}
			}
		case errors.Is(err, errInsufficient):
			aborts++
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("ran %d transfers (%d aborted for insufficient funds)\n", commits+aborts, aborts)
	if got := totalBalance(ex); got != want {
		log.Fatalf("conservation violated before crash: total %d, want %d", got, want)
	}
	fmt.Println("invariant holds after aborts: total balance conserved")

	// Crash mid-transfer: debited but not yet credited. The executor
	// joins the session's open transaction, which the crash strands.
	if err := ex.Session().Begin(); err != nil {
		log.Fatal(err)
	}
	bal, _, err := ex.GetCol(7, "balance")
	if err != nil {
		log.Fatal(err)
	}
	if err := ex.UpdateCol(7, "balance", bal.(int64)-500); err != nil {
		log.Fatal(err)
	}
	eng.TC.SendEOSL()
	crash := eng.Crash()
	fmt.Println("crashed mid-transfer (debit logged, credit never happened)")

	for _, m := range logrec.Methods() {
		recovered, met, err := logrec.Recover(crash, m, logrec.DefaultOptions(cfg))
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		rex := logrec.NewExecutor(recovered.NewSessionManager(0).NewSession(), cfg.TableID, accountSchema)
		got := totalBalance(rex)
		status := "OK"
		if got != want {
			status = "VIOLATED"
		}
		fmt.Printf("%-4v: total %d (%s), losers undone %d, redo %v\n",
			m, got, status, met.LosersUndone, met.RedoTotal)
		if got != want {
			log.Fatalf("%v lost money", m)
		}
	}
	fmt.Println("all five recovery methods conserve the total balance")
}
