// Replica: the paper's §1.1 motivation for logical recovery beyond
// re-architecting — maintaining a replica on a *physically different*
// environment. Because the TC's log records are logical (table + key,
// no page IDs), the same record stream can be applied to a DC with a
// different page size, cache size and page layout: the replica's pages
// look nothing like the primary's, yet the logical state converges.
//
// A physiological (PID-carrying) log could never be applied here: the
// primary's page 4711 does not exist, or holds different rows, on the
// replica.
//
// This example runs the production subsystem (internal/replica): a warm
// standby continuously ships the primary's stable log, replays it in
// logical mode (core.ReplayLogical — by table and key, never by PID),
// reports its replay lag, and is finally crash-promoted into a serving
// primary.
package main

import (
	"fmt"
	"log"
	"time"

	"logrec"
	"logrec/internal/core"
	"logrec/internal/replica"
)

func main() {
	// Primary: 4 KB pages.
	primCfg := logrec.DefaultConfig()
	primCfg.CachePages = 512
	primary, err := logrec.New(primCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Standby: 1 KB pages and a different cache size — a physically
	// non-isomorphic environment (different block size, as the paper
	// suggests for flash). Config.Standby keeps it log-silent and
	// session-less until promotion.
	replCfg := logrec.DefaultConfig()
	replCfg.Disk.PageSize = 1024
	replCfg.CachePages = 2048
	replCfg.Standby = true
	standbyEng, err := logrec.New(replCfg)
	if err != nil {
		log.Fatal(err)
	}

	const rows = 5_000
	valFn := func(k uint64) []byte { return []byte(fmt.Sprintf("row-%06d-v0", k)) }
	if err := primary.Load(rows, valFn); err != nil {
		log.Fatal(err)
	}
	if err := standbyEng.Load(rows, valFn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary: %d pages of %dB; replica: %d pages of %dB\n",
		primary.Disk.NumPages(), primCfg.Disk.PageSize,
		standbyEng.Disk.NumPages(), replCfg.Disk.PageSize)

	// Attach the standby to the primary's log and start shipping.
	standby, err := replica.New(primary.Log, standbyEng, replica.Config{
		Mode:         core.ReplayLogical,
		SegmentBytes: 8 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	standby.Start()

	// Run committed transactions on the primary while shipping is live.
	for i := 0; i < 300; i++ {
		txn := primary.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64((i*37 + u*13) % rows)
			v := []byte(fmt.Sprintf("row-%06d-v%03d", k, i+1))
			if err := primary.TC.Update(txn, primCfg.TableID, k, v); err != nil {
				log.Fatal(err)
			}
		}
		if err := primary.TC.Commit(txn); err != nil {
			log.Fatal(err)
		}
	}

	if err := standby.WaitCaughtUp(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	st := standby.Stats()
	fmt.Printf("shipped %d segments (%d bytes), replayed %d records (%d row ops applied), lag %d bytes\n",
		st.Segments, st.ShippedBytes, st.Replay.Records, st.Replay.Applied, st.Lag.Bytes)

	// The primary "dies"; promote the standby. Promotion drains the
	// stable log, rolls back in-flight losers (none here) and opens the
	// engine for sessions.
	promoted, met, err := standby.Promote()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted: %d losers undone\n", met.LosersUndone)

	// The two databases live on incompatible physical layouts...
	fmt.Printf("primary root PID %d (height %d); replica root PID %d (height %d)\n",
		primary.DC.Tree().Meta().Root, primary.DC.Tree().Meta().Height,
		promoted.DC.Tree().Meta().Root, promoted.DC.Tree().Meta().Height)

	// ...but hold identical logical contents.
	mismatch := 0
	err = primary.DC.Tree().Scan(func(k uint64, v []byte) error {
		rv, found, err := promoted.DC.Tree().Search(k)
		if err != nil {
			return err
		}
		if !found || string(rv) != string(v) {
			mismatch++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if mismatch != 0 {
		log.Fatalf("replica diverged on %d keys", mismatch)
	}
	fmt.Printf("replica verified: all %d rows identical across page sizes %dB vs %dB\n",
		rows, primCfg.Disk.PageSize, replCfg.Disk.PageSize)

	// And the promoted engine serves: one more committed transaction.
	txn := promoted.TC.Begin()
	if err := promoted.TC.Update(txn, replCfg.TableID, 0, []byte("served-after-failover")); err != nil {
		log.Fatal(err)
	}
	if err := promoted.TC.Commit(txn); err != nil {
		log.Fatal(err)
	}
	fmt.Println("promoted standby is serving transactions")
}
