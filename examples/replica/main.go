// Replica: the paper's §1.1 motivation for logical recovery beyond
// re-architecting — maintaining a replica on a *physically different*
// environment. Because the TC's log records are logical (table + key,
// no page IDs), the same record stream can be applied to a DC with a
// different page size, cache size and page layout: the replica's pages
// look nothing like the primary's, yet the logical state converges.
//
// A physiological (PID-carrying) log could never be applied here: the
// primary's page 4711 does not exist, or holds different rows, on the
// replica.
package main

import (
	"fmt"
	"log"

	"logrec"
	"logrec/internal/wal"
)

func main() {
	// Primary: 4 KB pages.
	primCfg := logrec.DefaultConfig()
	primCfg.CachePages = 512
	primary, err := logrec.New(primCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Replica: 1 KB pages and a different cache size — a physically
	// non-isomorphic environment (different block size, as the paper
	// suggests for flash).
	replCfg := logrec.DefaultConfig()
	replCfg.Disk.PageSize = 1024
	replCfg.CachePages = 2048
	replica, err := logrec.New(replCfg)
	if err != nil {
		log.Fatal(err)
	}

	const rows = 5_000
	valFn := func(k uint64) []byte { return []byte(fmt.Sprintf("row-%06d-v0", k)) }
	if err := primary.Load(rows, valFn); err != nil {
		log.Fatal(err)
	}
	if err := replica.Load(rows, valFn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary: %d pages of %dB; replica: %d pages of %dB\n",
		primary.Disk.NumPages(), primCfg.Disk.PageSize,
		replica.Disk.NumPages(), replCfg.Disk.PageSize)

	// Run committed transactions on the primary.
	for i := 0; i < 300; i++ {
		txn := primary.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64((i*37 + u*13) % rows)
			v := []byte(fmt.Sprintf("row-%06d-v%03d", k, i+1))
			if err := primary.TC.Update(txn, primCfg.TableID, k, v); err != nil {
				log.Fatal(err)
			}
		}
		if err := primary.TC.Commit(txn); err != nil {
			log.Fatal(err)
		}
	}

	// Ship the primary's logical log to the replica: scan the stable
	// log and re-apply each committed update by (table, key) — exactly
	// what logical redo does, page identities never cross the wire.
	shipped := 0
	sc := primary.Log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		upd, isUpd := rec.(*wal.UpdateRec)
		if !isUpd {
			continue // checkpoints, ∆/BW records etc. are site-local
		}
		txn := replica.TC.Begin()
		if err := replica.TC.Update(txn, replCfg.TableID, upd.KeyVal, upd.NewVal); err != nil {
			log.Fatalf("replay key %d: %v", upd.KeyVal, err)
		}
		if err := replica.TC.Commit(txn); err != nil {
			log.Fatal(err)
		}
		shipped++
	}
	fmt.Printf("shipped %d logical update records to the replica\n", shipped)

	// The two databases live on incompatible physical layouts...
	fmt.Printf("primary root PID %d (height %d); replica root PID %d (height %d)\n",
		primary.DC.Tree().Meta().Root, primary.DC.Tree().Meta().Height,
		replica.DC.Tree().Meta().Root, replica.DC.Tree().Meta().Height)

	// ...but hold identical logical contents.
	mismatch := 0
	err = primary.DC.Tree().Scan(func(k uint64, v []byte) error {
		rv, found, err := replica.DC.Tree().Search(k)
		if err != nil {
			return err
		}
		if !found || string(rv) != string(v) {
			mismatch++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if mismatch != 0 {
		log.Fatalf("replica diverged on %d keys", mismatch)
	}
	fmt.Printf("replica verified: all %d rows identical across page sizes %dB vs %dB\n",
		rows, primCfg.Disk.PageSize, replCfg.Disk.PageSize)
}
