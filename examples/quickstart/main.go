// Quickstart: create a database, run transactions, crash it, and
// recover with optimised logical recovery (Log2), verifying that
// committed updates survive and the uncommitted transaction is rolled
// back.
package main

import (
	"fmt"
	"log"

	"logrec"
)

func main() {
	cfg := logrec.DefaultConfig()
	cfg.CachePages = 512

	eng, err := logrec.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load 10,000 rows and take the initial checkpoint.
	const rows = 10_000
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-value-%06d", k))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d pages on disk)\n", rows, eng.Disk.NumPages())

	// Committed work: 200 small transactions.
	for i := 0; i < 200; i++ {
		txn := eng.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64((i*10 + u) % rows)
			v := []byte(fmt.Sprintf("committed-txn-%03d-%06d", i, k))
			if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
				log.Fatal(err)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			log.Fatal(err)
		}
		if (i+1)%50 == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// An uncommitted transaction in flight at the crash: recovery must
	// roll it back.
	loser := eng.TC.Begin()
	if err := eng.TC.Update(loser, cfg.TableID, 42, []byte("UNCOMMITTED")); err != nil {
		log.Fatal(err)
	}
	eng.TC.SendEOSL() // its log records reach the stable log anyway

	fmt.Printf("crashing with %d dirty pages in cache\n", eng.DC.Pool().DirtyCount())
	crash := eng.Crash()

	recovered, met, err := logrec.Recover(crash, logrec.Log2, logrec.DefaultOptions(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered with %v:\n", met.Method)
	fmt.Printf("  DC pass  %v (DPT %d entries)\n", met.PrepTime, met.DPTSize)
	fmt.Printf("  redo     %v (%d records, %d applied, %d screened by DPT)\n",
		met.RedoTime, met.RedoRecords, met.Applied, met.SkippedDPT+met.SkippedRLSN)
	fmt.Printf("  undo     %v (%d loser, %d CLRs)\n", met.UndoTime, met.LosersUndone, met.CLRsWritten)

	// Committed value survived.
	v, found, err := recovered.DC.Tree().Search(42)
	if err != nil || !found {
		log.Fatalf("key 42 lost: found=%v err=%v", found, err)
	}
	if string(v) == "UNCOMMITTED" {
		log.Fatal("uncommitted value survived recovery")
	}
	fmt.Printf("key 42 after recovery: %q (loser rolled back)\n", v)

	// The recovered engine is immediately usable.
	txn := recovered.TC.Begin()
	if err := recovered.TC.Update(txn, cfg.TableID, 42, []byte("post-recovery")); err != nil {
		log.Fatal(err)
	}
	if err := recovered.TC.Commit(txn); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-recovery transaction committed — engine is live")
}
