// Quickstart: create a database, run typed transactions through the
// executor API, crash it, and recover with optimised logical recovery
// (Log2), verifying through a typed query that committed updates
// survive and the uncommitted transaction is rolled back.
package main

import (
	"fmt"
	"log"

	"logrec"
)

// Each row is a note plus the revision that last touched it.
var schema = logrec.MustSchema(
	logrec.Column{Name: "note", Type: logrec.TString},
	logrec.Column{Name: "rev", Type: logrec.TUint64},
)

func main() {
	cfg := logrec.DefaultConfig()
	cfg.CachePages = 512

	eng, err := logrec.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load 10,000 typed rows and take the initial checkpoint.
	const rows = 10_000
	if err := eng.Load(rows, func(k uint64) []byte {
		row, err := schema.Encode(fmt.Sprintf("initial-value-%06d", k), uint64(0))
		if err != nil {
			log.Fatal(err)
		}
		return row
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d pages on disk)\n", rows, eng.Disk.NumPages())

	mgr := eng.NewSessionManager(0)
	ex := logrec.NewExecutor(mgr.NewSession(), cfg.TableID, schema)

	// Committed work: 200 small transactions through the executor.
	for i := 0; i < 200; i++ {
		rev := uint64(i + 1)
		err := ex.Txn(func() error {
			for u := 0; u < 10; u++ {
				k := uint64((i*10 + u) % rows)
				note := fmt.Sprintf("committed-txn-%03d-%06d", i, k)
				if err := ex.Update(k, note, rev); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if rev%50 == 0 {
			if err := mgr.Checkpoint(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// An uncommitted transaction in flight at the crash: recovery must
	// roll it back. The executor joins the session's open transaction.
	if err := ex.Session().Begin(); err != nil {
		log.Fatal(err)
	}
	if err := ex.Update(42, "UNCOMMITTED", uint64(999)); err != nil {
		log.Fatal(err)
	}
	eng.TC.SendEOSL() // its log records reach the stable log anyway

	fmt.Printf("crashing with %d dirty pages in cache\n", eng.DC.Pool().DirtyCount())
	crash := eng.Crash()

	recovered, met, err := logrec.Recover(crash, logrec.Log2, logrec.DefaultOptions(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered with %v:\n", met.Method)
	fmt.Printf("  DC pass  %v (DPT %d entries)\n", met.PrepTime, met.DPTSize)
	fmt.Printf("  redo     %v (%d records, %d applied, %d screened by DPT)\n",
		met.RedoTime, met.RedoRecords, met.Applied, met.SkippedDPT+met.SkippedRLSN)
	fmt.Printf("  undo     %v (%d loser, %d CLRs)\n", met.UndoTime, met.LosersUndone, met.CLRsWritten)

	rex := logrec.NewExecutor(recovered.NewSessionManager(0).NewSession(), cfg.TableID, schema)

	// Committed value survived; the loser's write did not.
	vals, found, err := rex.Get(42)
	if err != nil || !found {
		log.Fatalf("key 42 lost: found=%v err=%v", found, err)
	}
	if vals[0].(string) == "UNCOMMITTED" {
		log.Fatal("uncommitted value survived recovery")
	}
	fmt.Printf("key 42 after recovery: %q rev %d (loser rolled back)\n", vals[0], vals[1])

	// Typed queries run against the recovered engine too: no trace of
	// the loser's revision anywhere, and the last committed revision is
	// fully present.
	if n, err := rex.ScanAll().Where("rev", logrec.Eq, uint64(999)).Count(); err != nil || n != 0 {
		log.Fatalf("loser revision visible on %d rows (err=%v)", n, err)
	}
	n, err := rex.ScanAll().Where("rev", logrec.Eq, uint64(200)).Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("typed query: %d rows carry the final committed revision\n", n)

	// The recovered engine is immediately usable.
	if err := rex.Txn(func() error {
		return rex.Update(42, "post-recovery", uint64(201))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-recovery transaction committed — engine is live")
}
