# CI and humans invoke the same targets (.github/workflows/ci.yml runs
# exactly these).

GO ?= go

.PHONY: build test race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full write-path sweep: emits BENCH_wal.json, then runs the Go bench
# cases once each.
bench:
	$(GO) run ./cmd/walbench
	$(GO) test -run '^$$' -bench WALGroupCommit -benchtime 300x .

# Short smoke sweep for CI artifact upload.
bench-smoke:
	$(GO) run ./cmd/walbench -quick

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check test race
