# CI and humans invoke the same targets (.github/workflows/ci.yml runs
# exactly these).

GO ?= go

# Bench output stays out of the checkout (it used to dirty the tree in
# CI); the regression gate reads from here and CI uploads it as an
# artifact. Override BENCH_DIR to redirect, TOLERANCE to loosen/tighten
# the gate.
BENCH_DIR ?= $(if $(RUNNER_TEMP),$(RUNNER_TEMP),/tmp)/logrec-bench
TOLERANCE ?= 0.30

# The file-device benchmark needs a real directory to put its page file
# and WAL in; tmpfs when the host has one (CI smoke: small log, no disk
# wear, no noisy-neighbour IO), /tmp otherwise.
FILEDEV_DIR ?= $(shell test -d /dev/shm && echo /dev/shm/logrec-filedev || echo /tmp/logrec-filedev)

.PHONY: build test race fuzz-smoke examples doclint bench bench-smoke bench-gate bench-baseline workload-smoke staticcheck fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the WAL codec: adversarial bytes and torn tails
# must never panic the decoder. CI runs this; `go test -fuzz` without
# -fuzztime runs it open-ended for real fuzzing sessions.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeAt -fuzztime 10s ./internal/wal

# Build and run every example program, so the documented entry points
# cannot rot silently.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/replica
	$(GO) run ./examples/sidebyside

# Documentation lint: every package needs a godoc comment and every
# Config/Options knob field needs a doc comment (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint internal cmd examples

$(BENCH_DIR):
	mkdir -p $(BENCH_DIR)

# Full write-path + recovery sweeps (simulated and file device), the
# fsync-amortization curve on a real log device, the cross-shard
# recovery sweep, the recovery-SLO run (budget-mode checkpointing on
# both devices), then the Go bench cases once each.
bench: | $(BENCH_DIR)
	$(GO) run ./cmd/walbench -out $(BENCH_DIR)/BENCH_wal.json
	$(GO) run ./cmd/walbench -device=file -dir $(FILEDEV_DIR)-wal -flushdelay 0 \
		-out $(BENCH_DIR)/BENCH_wal_file.json
	$(GO) run ./cmd/walbench -shards 1,2,4,8 -out $(BENCH_DIR)/BENCH_wal_shards.json
	$(GO) run ./cmd/recoverybench -out $(BENCH_DIR)/BENCH_recovery.json
	$(GO) run ./cmd/recoverybench -device=file -dir $(FILEDEV_DIR) \
		-out $(BENCH_DIR)/BENCH_recovery_file.json
	$(GO) run ./cmd/recoverybench -shards 1,2,4,8 \
		-out $(BENCH_DIR)/BENCH_recovery_shards.json
	$(GO) run ./cmd/recoverybench -budget 75ms,250ms \
		-dir $(FILEDEV_DIR)-slo -out $(BENCH_DIR)/BENCH_recovery_slo.json
	$(GO) run ./cmd/walbench -workload mixed -out $(BENCH_DIR)/BENCH_workload.json
	$(GO) run ./cmd/walbench -workload b -poolpolicy 2q \
		-out $(BENCH_DIR)/BENCH_workload_b.json
	$(GO) run ./cmd/poolbench -out $(BENCH_DIR)/BENCH_pool.json
	$(GO) run ./cmd/replicabench -out $(BENCH_DIR)/BENCH_replica.json
	$(GO) test -run '^$$' -bench WALGroupCommit -benchtime 300x .

# Short smoke sweeps for CI artifact upload and the regression gate.
# The file-device leg runs the same pipeline against real files
# (tmpfs-backed in CI, see FILEDEV_DIR).
bench-smoke: | $(BENCH_DIR)
	$(GO) run ./cmd/walbench -quick -out $(BENCH_DIR)/BENCH_wal.json
	$(GO) run ./cmd/walbench -quick -shards 1,2,4,8 -out $(BENCH_DIR)/BENCH_wal_shards.json
	$(GO) run ./cmd/recoverybench -quick -out $(BENCH_DIR)/BENCH_recovery.json
	$(GO) run ./cmd/recoverybench -device=file -quick -dir $(FILEDEV_DIR) \
		-out $(BENCH_DIR)/BENCH_recovery_file.json
	$(GO) run ./cmd/recoverybench -quick -shards 1,2,4,8 \
		-out $(BENCH_DIR)/BENCH_recovery_shards.json
	$(GO) run ./cmd/recoverybench -quick -budget 75ms \
		-dir $(FILEDEV_DIR)-slo -out $(BENCH_DIR)/BENCH_recovery_slo.json
	$(GO) run ./cmd/walbench -workload mixed -quick -out $(BENCH_DIR)/BENCH_workload.json
	$(GO) run ./cmd/walbench -workload b -quick -poolpolicy 2q \
		-out $(BENCH_DIR)/BENCH_workload_b.json
	$(GO) run ./cmd/poolbench -quick -out $(BENCH_DIR)/BENCH_pool.json
	$(GO) run ./cmd/replicabench -quick -out $(BENCH_DIR)/BENCH_replica.json

# Tiny zipfian mixed run through the typed executor on the simulated
# device, then the workload gate: op-mix coverage, nonzero scan rows,
# the crash-recovery typed digest, and the pushdown decode win (the
# driver itself asserts the first three; benchdiff re-checks them plus
# throughput against the baseline).
workload-smoke: | $(BENCH_DIR)
	$(GO) run ./cmd/walbench -workload mixed -quick -out $(BENCH_DIR)/BENCH_workload.json
	$(GO) run ./cmd/benchdiff -kind workload -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_workload.json -current $(BENCH_DIR)/BENCH_workload.json

# Regression gate: compare fresh smoke numbers against the checked-in
# baselines. Fails on a >TOLERANCE walbench throughput drop, a parallel
# redo speedup collapse, a redo-window drift past TOLERANCE, or a
# file-device run that silently stopped doing real work (see
# cmd/benchdiff for what each kind checks).
bench-gate: bench-smoke
	$(GO) run ./cmd/benchdiff -kind wal -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_wal.json -current $(BENCH_DIR)/BENCH_wal.json
	$(GO) run ./cmd/benchdiff -kind wal-shards -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_wal_shards.json -current $(BENCH_DIR)/BENCH_wal_shards.json
	$(GO) run ./cmd/benchdiff -kind recovery -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_recovery.json -current $(BENCH_DIR)/BENCH_recovery.json
	$(GO) run ./cmd/benchdiff -kind recovery-file -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_recovery_file.json -current $(BENCH_DIR)/BENCH_recovery_file.json
	$(GO) run ./cmd/benchdiff -kind recovery-shards -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_recovery_shards.json -current $(BENCH_DIR)/BENCH_recovery_shards.json
	$(GO) run ./cmd/benchdiff -kind recovery-slo -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_recovery_slo.json -current $(BENCH_DIR)/BENCH_recovery_slo.json
	$(GO) run ./cmd/benchdiff -kind workload -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_workload.json -current $(BENCH_DIR)/BENCH_workload.json
	$(GO) run ./cmd/benchdiff -kind workload -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_workload_b.json -current $(BENCH_DIR)/BENCH_workload_b.json
	$(GO) run ./cmd/benchdiff -kind pool -tolerance $(TOLERANCE) \
		-baseline ci/baselines/BENCH_pool.json -current $(BENCH_DIR)/BENCH_pool.json
	$(GO) run ./cmd/benchdiff -kind replica \
		-baseline ci/baselines/BENCH_replica.json -current $(BENCH_DIR)/BENCH_replica.json

# Refresh the checked-in baselines after an intentional perf change.
bench-baseline: bench-smoke
	cp $(BENCH_DIR)/BENCH_wal.json ci/baselines/BENCH_wal.json
	cp $(BENCH_DIR)/BENCH_wal_shards.json ci/baselines/BENCH_wal_shards.json
	cp $(BENCH_DIR)/BENCH_recovery.json ci/baselines/BENCH_recovery.json
	cp $(BENCH_DIR)/BENCH_recovery_file.json ci/baselines/BENCH_recovery_file.json
	cp $(BENCH_DIR)/BENCH_recovery_shards.json ci/baselines/BENCH_recovery_shards.json
	cp $(BENCH_DIR)/BENCH_recovery_slo.json ci/baselines/BENCH_recovery_slo.json
	cp $(BENCH_DIR)/BENCH_workload.json ci/baselines/BENCH_workload.json
	cp $(BENCH_DIR)/BENCH_workload_b.json ci/baselines/BENCH_workload_b.json
	cp $(BENCH_DIR)/BENCH_pool.json ci/baselines/BENCH_pool.json
	cp $(BENCH_DIR)/BENCH_replica.json ci/baselines/BENCH_replica.json

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs it — see .github/workflows/ci.yml)"; \
	fi

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check staticcheck doclint test race
