// Group-commit write-path benchmarks: commits/sec through concurrent
// tc.Sessions at 1/4/16 clients, with records-per-flush reported as a
// custom metric. Unlike the recovery benchmarks in bench_test.go these
// measure *wall-clock* throughput — the multi-client write path is real
// concurrency, not virtual time. cmd/walbench prints the same sweep
// with nicer formatting and emits BENCH_wal.json.
package logrec_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logrec/internal/engine"
)

const (
	walBenchRows   = 4000
	walBenchOps    = 2 // updates per transaction
	walFlushDelay  = 50 * time.Microsecond
	walBenchJitter = 8 // keys touched per client partition
)

func BenchmarkWALGroupCommit(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			benchGroupCommit(b, clients)
		})
	}
}

func benchGroupCommit(b *testing.B, clients int) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = 512
	eng, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(walBenchRows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-value-%06d", k))
	}); err != nil {
		b.Fatal(err)
	}
	mgr := eng.NewSessionManager(walFlushDelay)

	// b.N transactions total, drawn from a shared counter; each client
	// updates its own key partition so the benchmark isolates the write
	// path from lock contention.
	var next atomic.Int64
	perClient := walBenchRows / clients

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if err := sess.Begin(); err != nil {
					b.Error(err)
					return
				}
				for u := 0; u < walBenchOps; u++ {
					k := base + uint64(int(i)*walBenchOps+u)%uint64(walBenchJitter)
					if err := sess.Update(cfg.TableID, k, []byte(fmt.Sprintf("t%08d-u%d", i, u))); err != nil {
						b.Error(err)
						return
					}
				}
				if err := sess.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	st := eng.Stats().WAL
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "commits/sec")
	b.ReportMetric(st.RecordsPerFlush(), "recs/flush")
	if st.Flushes > 0 {
		b.ReportMetric(float64(st.Commits)/float64(st.Flushes), "commits/flush")
	}
}
